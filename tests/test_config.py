"""Tests for repro.config."""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    ConsistencyModel,
    InterconnectConfig,
    SpeculationConfig,
    SpeculationMode,
    StoreBufferConfig,
    StoreBufferKind,
    SystemConfig,
    ViolationPolicy,
    default_store_buffer,
    paper_config,
    small_config,
)
from repro.errors import ConfigurationError


class TestCacheConfig:
    def test_basic_geometry(self):
        cache = CacheConfig(size_bytes=64 * 1024, associativity=2, block_bytes=64,
                            hit_latency=2)
        assert cache.num_blocks == 1024
        assert cache.num_sets == 512

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, associativity=2, block_bytes=48, hit_latency=1)

    def test_rejects_size_not_multiple_of_way_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, associativity=2, block_bytes=64, hit_latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, associativity=2, block_bytes=64, hit_latency=-1)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=0, associativity=2, block_bytes=64, hit_latency=1)


class TestStoreBufferConfig:
    def test_valid(self):
        sb = StoreBufferConfig(StoreBufferKind.FIFO_WORD, 64, 8)
        assert sb.entries == 64

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            StoreBufferConfig(StoreBufferKind.FIFO_WORD, 0, 8)

    def test_rejects_zero_entry_bytes(self):
        with pytest.raises(ConfigurationError):
            StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, 8, 0)


class TestInterconnectConfig:
    def test_num_nodes(self):
        net = InterconnectConfig(mesh_width=4, mesh_height=4, hop_latency=100)
        assert net.num_nodes == 16

    def test_rejects_zero_dimension(self):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(mesh_width=0, mesh_height=4, hop_latency=1)


class TestSpeculationConfig:
    def test_defaults_are_non_speculative(self):
        spec = SpeculationConfig()
        assert spec.mode is SpeculationMode.NONE
        assert spec.num_checkpoints == 1

    def test_rejects_zero_checkpoints(self):
        with pytest.raises(ConfigurationError):
            SpeculationConfig(num_checkpoints=0)

    def test_rejects_three_checkpoints_for_invisifence(self):
        with pytest.raises(ConfigurationError):
            SpeculationConfig(mode=SpeculationMode.SELECTIVE, num_checkpoints=3)

    def test_aso_may_use_many_checkpoints(self):
        spec = SpeculationConfig(mode=SpeculationMode.ASO, num_checkpoints=8)
        assert spec.num_checkpoints == 8

    def test_rejects_non_positive_cov_timeout(self):
        with pytest.raises(ConfigurationError):
            SpeculationConfig(cov_timeout=0)

    def test_rejects_non_positive_chunk(self):
        with pytest.raises(ConfigurationError):
            SpeculationConfig(min_chunk_size=0)


class TestDefaultStoreBuffer:
    def test_sc_and_tso_get_fifo(self):
        for model in (ConsistencyModel.SC, ConsistencyModel.TSO):
            sb = default_store_buffer(model, SpeculationConfig())
            assert sb.kind is StoreBufferKind.FIFO_WORD
            assert sb.entries == 64

    def test_rmo_gets_coalescing(self):
        sb = default_store_buffer(ConsistencyModel.RMO, SpeculationConfig())
        assert sb.kind is StoreBufferKind.COALESCING_BLOCK
        assert sb.entries == 8

    def test_selective_single_checkpoint_gets_eight_entries(self):
        sb = default_store_buffer(ConsistencyModel.SC,
                                  SpeculationConfig(mode=SpeculationMode.SELECTIVE))
        assert sb.kind is StoreBufferKind.COALESCING_BLOCK
        assert sb.entries == 8

    def test_two_checkpoints_get_32_entries(self):
        sb = default_store_buffer(
            ConsistencyModel.SC,
            SpeculationConfig(mode=SpeculationMode.SELECTIVE, num_checkpoints=2))
        assert sb.entries == 32

    def test_continuous_gets_32_entries(self):
        sb = default_store_buffer(
            ConsistencyModel.SC,
            SpeculationConfig(mode=SpeculationMode.CONTINUOUS, num_checkpoints=2))
        assert sb.entries == 32

    def test_aso_gets_large_fifo(self):
        sb = default_store_buffer(ConsistencyModel.SC,
                                  SpeculationConfig(mode=SpeculationMode.ASO))
        assert sb.kind is StoreBufferKind.FIFO_WORD
        assert sb.entries >= 128


class TestSystemConfig:
    def test_paper_defaults_match_figure6(self):
        config = paper_config()
        assert config.num_cores == 16
        assert config.l1.size_bytes == 64 * 1024
        assert config.l1.hit_latency == 2
        assert config.l2.size_bytes == 8 * 1024 * 1024
        assert config.l2.hit_latency == 25
        assert config.memory_latency == 160
        assert config.interconnect.mesh_width == 4
        assert config.interconnect.hop_latency == 100

    def test_store_buffer_auto_selected(self):
        config = paper_config(ConsistencyModel.RMO)
        assert config.store_buffer is not None
        assert config.store_buffer.kind is StoreBufferKind.COALESCING_BLOCK

    def test_rejects_more_cores_than_nodes(self):
        with pytest.raises(ConfigurationError):
            paper_config(num_cores=17)

    def test_rejects_mismatched_block_sizes(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(
                num_cores=2,
                l1=CacheConfig(size_bytes=8 * 1024, associativity=2, block_bytes=64,
                               hit_latency=2),
                l2=CacheConfig(size_bytes=64 * 1024, associativity=8, block_bytes=128,
                               hit_latency=10),
            )

    def test_describe_mentions_key_parameters(self):
        info = paper_config().describe()
        assert info["cores"] == "16"
        assert "64KB" in info["L1"]
        assert "torus" in info["interconnect"]

    def test_replace_creates_modified_copy(self):
        config = paper_config()
        other = config.replace(num_cores=8)
        assert other.num_cores == 8
        assert config.num_cores == 16

    def test_uses_speculation_flag(self):
        assert not paper_config().uses_speculation
        spec = SpeculationConfig(mode=SpeculationMode.SELECTIVE)
        assert paper_config(speculation=spec).uses_speculation

    def test_small_config_scales_down(self):
        config = small_config(num_cores=4)
        assert config.num_cores == 4
        assert config.l1.size_bytes < paper_config().l1.size_bytes
        assert config.memory_latency < paper_config().memory_latency

    def test_small_config_grows_mesh_for_more_cores(self):
        config = small_config(num_cores=9)
        assert config.interconnect.num_nodes >= 9

    def test_enums_render_as_strings(self):
        assert str(ConsistencyModel.SC) == "sc"
        assert str(SpeculationMode.SELECTIVE) == "selective"
        assert str(ViolationPolicy.COMMIT_ON_VIOLATE) == "commit_on_violate"
        assert str(StoreBufferKind.FIFO_WORD) == "fifo_word"

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            paper_config().num_cores = 4

"""Tests for repro.memory.address."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.address import (
    WORD_BYTES,
    block_address,
    block_index,
    block_offset,
    same_block,
    word_address,
    words_in_block,
)


class TestBlockAddress:
    def test_aligns_down(self):
        assert block_address(0, 64) == 0
        assert block_address(63, 64) == 0
        assert block_address(64, 64) == 64
        assert block_address(130, 64) == 128

    def test_identity_for_aligned(self):
        for addr in (0, 64, 128, 1024 * 64):
            assert block_address(addr, 64) == addr

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            block_address(100, 48)

    def test_rejects_zero_block(self):
        with pytest.raises(ConfigurationError):
            block_address(100, 0)


class TestBlockIndexAndOffset:
    def test_index(self):
        assert block_index(0, 64) == 0
        assert block_index(64, 64) == 1
        assert block_index(64 * 10 + 5, 64) == 10

    def test_offset(self):
        assert block_offset(0, 64) == 0
        assert block_offset(65, 64) == 1
        assert block_offset(127, 64) == 63

    def test_index_and_offset_recompose(self):
        for addr in (0, 1, 63, 64, 1000, 123456):
            assert block_index(addr, 64) * 64 + block_offset(addr, 64) == addr


class TestWords:
    def test_word_address_aligns(self):
        assert word_address(0) == 0
        assert word_address(7) == 0
        assert word_address(8) == 8
        assert word_address(100) == 96

    def test_words_in_block(self):
        assert words_in_block(64) == 64 // WORD_BYTES
        assert words_in_block(128) == 16


class TestSameBlock:
    def test_same_block_true(self):
        assert same_block(0, 63, 64)
        assert same_block(128, 191, 64)

    def test_same_block_false(self):
        assert not same_block(63, 64, 64)
        assert not same_block(0, 128, 64)

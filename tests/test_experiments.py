"""Tests for the experiment drivers (scaled far down for speed).

The full-scale figures are exercised by the benchmark harness; here the
concern is that every driver runs, produces the expected rows/series, and
that obvious qualitative relations hold on a miniature setup.
"""

import pytest

from repro.config import SpeculationMode, StoreBufferKind, ViolationPolicy
from repro.errors import ConfigurationError
from repro.experiments.common import CONFIG_NAMES, ExperimentRunner, ExperimentSettings, make_config
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure8 import FIGURE8_CONFIGS, run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.figure11 import run_figure11
from repro.experiments.figure12 import run_figure12
from repro.experiments.tables import (
    figure2_table,
    figure4_table,
    figure5_table,
    figure6_table,
    figure7_table,
)

#: miniature settings shared by every test in this module (module-scoped
#: runner so simulations are reused across tests).
SETTINGS = ExperimentSettings.quick(num_cores=4, ops_per_thread=800,
                                    workloads=("apache", "barnes"))


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(SETTINGS)


class TestConfigFactory:
    def test_all_names_buildable(self):
        for name in CONFIG_NAMES:
            config = make_config(name, SETTINGS)
            assert config.num_cores == SETTINGS.num_cores

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_config("bogus", SETTINGS)

    def test_invisi_configs_use_selective_mode(self):
        assert make_config("invisi_rmo", SETTINGS).speculation.mode is SpeculationMode.SELECTIVE

    def test_continuous_cov_configuration(self):
        config = make_config("invisi_cont_cov", SETTINGS)
        assert config.speculation.mode is SpeculationMode.CONTINUOUS
        assert config.speculation.violation_policy is ViolationPolicy.COMMIT_ON_VIOLATE

    def test_conventional_store_buffers(self):
        assert make_config("sc", SETTINGS).store_buffer.kind is StoreBufferKind.FIFO_WORD
        assert make_config("rmo", SETTINGS).store_buffer.kind is StoreBufferKind.COALESCING_BLOCK


class TestRunnerCaching:
    def test_results_are_cached(self, runner):
        first = runner.run("sc", "apache", 1)
        second = runner.run("sc", "apache", 1)
        assert first is second

    def test_traces_are_cached(self, runner):
        assert runner.trace("apache", 1) is runner.trace("apache", 1)

    def test_speedup_of_baseline_is_one(self, runner):
        assert runner.speedup("sc", "apache", baseline="sc") == pytest.approx(1.0)

    def test_normalized_breakdown_of_baseline_sums_to_100(self, runner):
        values = runner.normalized_breakdown("sc", "apache", baseline="sc")
        assert sum(values.values()) == pytest.approx(100.0)


class TestFigureDrivers:
    def test_figure1(self, runner):
        result = run_figure1(SETTINGS, runner)
        assert set(result.stalls) == set(SETTINGS.workloads)
        for workload in SETTINGS.workloads:
            assert result.total(workload, "sc") >= result.total(workload, "rmo") - 1.0
        assert "Figure 1" in result.format()

    def test_figure8(self, runner):
        result = run_figure8(SETTINGS, runner)
        for workload in SETTINGS.workloads:
            assert result.speedups[workload]["sc"] == pytest.approx(1.0)
            assert result.speedups[workload]["invisi_rmo"] >= 0.95
        assert result.average_speedup("invisi_sc") >= result.average_speedup("sc")
        assert "Figure 8" in result.format()

    def test_figure9(self, runner):
        result = run_figure9(SETTINGS, runner)
        for workload in SETTINGS.workloads:
            assert result.total(workload, "sc") == pytest.approx(100.0)
            for config in FIGURE8_CONFIGS:
                assert result.total(workload, config) > 0
        assert "Figure 9" in result.format()

    def test_figure10(self, runner):
        result = run_figure10(SETTINGS, runner)
        for workload in SETTINGS.workloads:
            for config, value in result.speculation_pct[workload].items():
                assert 0.0 <= value <= 100.0
        assert result.average("invisi_rmo") <= result.average("invisi_sc") + 1.0
        assert "Figure 10" in result.format()

    def test_figure11(self, runner):
        result = run_figure11(SETTINGS, runner)
        for workload in SETTINGS.workloads:
            assert result.total(workload, "aso_sc") == pytest.approx(100.0)
            # The three proposals perform comparably.
            assert 50.0 < result.total(workload, "invisi_sc") < 200.0
        assert "Figure 11" in result.format()

    def test_figure12(self, runner):
        result = run_figure12(SETTINGS, runner)
        for workload in SETTINGS.workloads:
            assert result.total(workload, "sc") == pytest.approx(100.0)
            assert result.total(workload, "invisi_rmo") <= 100.0 + 1e-6
        assert "Figure 12" in result.format()


class TestTables:
    def test_figure2_table_lists_models(self):
        text = figure2_table()
        for token in ("SC", "TSO", "RMO", "Drain SB", "Complete store"):
            assert token in text

    def test_figure4_table_defaults_and_measured(self, runner):
        assert "INVISIFENCE-CONTINUOUS" in figure4_table()
        fig10 = run_figure10(SETTINGS, runner)
        text = figure4_table(fig10)
        assert "%" in text

    def test_figure5_table_mentions_rivals(self):
        text = figure5_table()
        assert "BulkSC" in text and "ASO" in text

    def test_figure6_table_matches_config(self):
        text = figure6_table()
        assert "64KB" in text and "torus" in text

    def test_figure7_table_lists_all_workloads(self):
        text = figure7_table()
        for name in ("apache", "zeus", "oltp-oracle", "oltp-db2", "dss-db2",
                     "barnes", "ocean"):
            assert name in text

"""Tests for repro.memory.block (per-block state and speculative bits)."""

from repro.memory.block import CacheBlock, CoherenceState


class TestCoherenceState:
    def test_validity(self):
        assert not CoherenceState.INVALID.is_valid
        assert CoherenceState.SHARED.is_valid
        assert CoherenceState.EXCLUSIVE.is_valid
        assert CoherenceState.MODIFIED.is_valid

    def test_writability(self):
        assert not CoherenceState.INVALID.is_writable
        assert not CoherenceState.SHARED.is_writable
        assert CoherenceState.EXCLUSIVE.is_writable
        assert CoherenceState.MODIFIED.is_writable


class TestSpeculativeBits:
    def test_fresh_block_not_speculative(self):
        block = CacheBlock(address=0)
        assert not block.speculative
        assert not block.conflicts_with_external_write()
        assert not block.conflicts_with_external_read()

    def test_spec_read_conflicts_only_with_writes(self):
        block = CacheBlock(address=0, state=CoherenceState.SHARED)
        block.mark_spec_read(7)
        assert block.speculative
        assert block.conflicts_with_external_write()
        assert not block.conflicts_with_external_read()

    def test_spec_written_conflicts_with_any_external_request(self):
        block = CacheBlock(address=0, state=CoherenceState.MODIFIED)
        block.mark_spec_written(7)
        assert block.conflicts_with_external_write()
        assert block.conflicts_with_external_read()

    def test_first_setter_retained(self):
        block = CacheBlock(address=0, state=CoherenceState.MODIFIED)
        block.mark_spec_read(1)
        block.mark_spec_read(2)
        assert block.spec_read == 1
        block.mark_spec_written(3)
        block.mark_spec_written(4)
        assert block.spec_written == 3
        assert block.speculation_ids() == {1, 3}

    def test_clear_spec_bits(self):
        block = CacheBlock(address=0, state=CoherenceState.MODIFIED)
        block.mark_spec_read(1)
        block.mark_spec_written(1)
        block.clear_spec_bits()
        assert not block.speculative
        assert block.speculation_ids() == set()

    def test_clear_spec_bits_for_specific_checkpoint(self):
        block = CacheBlock(address=0, state=CoherenceState.MODIFIED)
        block.mark_spec_read(1)
        block.mark_spec_written(2)
        block.clear_spec_bits_for(1)
        assert block.spec_read is None
        assert block.spec_written == 2
        block.clear_spec_bits_for(2)
        assert not block.speculative

    def test_invalidate_clears_everything(self):
        block = CacheBlock(address=0, state=CoherenceState.MODIFIED, dirty=True)
        block.mark_spec_written(5)
        block.invalidate()
        assert block.state is CoherenceState.INVALID
        assert not block.dirty
        assert not block.speculative

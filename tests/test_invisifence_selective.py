"""Directed tests for INVISIFENCE-SELECTIVE.

These check the speculation triggers for each enforced model, the
opportunistic commit, violation detection and rollback, the forward
progress rule, forced commits on speculative evictions, and the
two-checkpoint variant.
"""

from repro.config import ConsistencyModel
from repro.trace.ops import atomic, compute, fence, load, store
from tests.conftest import block_addr, make_system, run_ops, run_system, selective_config

A = block_addr(1000)
B = block_addr(2000)
C = block_addr(3000)
SHARED = block_addr(500)


def single_core(ops, config):
    result = run_ops([ops, [compute(1)]], config)
    return result, result.core_stats[0]


class TestTriggers:
    def test_sc_load_past_store_miss_speculates_instead_of_stalling(self):
        config = selective_config(ConsistencyModel.SC)
        result, stats = single_core([store(A), load(B)], config)
        assert stats.speculations >= 1
        assert stats.sb_drain == 0
        assert stats.commits >= 1

    def test_sc_no_speculation_when_store_buffer_empty(self):
        config = selective_config(ConsistencyModel.SC)
        result, stats = single_core([store(A), compute(2000), load(B)], config)
        assert stats.speculations == 0

    def test_tso_load_does_not_trigger_speculation(self):
        config = selective_config(ConsistencyModel.TSO)
        result, stats = single_core([store(A), load(B), compute(2000)], config)
        assert stats.speculations == 0

    def test_tso_store_past_store_miss_triggers(self):
        config = selective_config(ConsistencyModel.TSO)
        result, stats = single_core([store(A), store(B)], config)
        assert stats.speculations >= 1

    def test_rmo_fence_past_store_miss_triggers(self):
        config = selective_config(ConsistencyModel.RMO)
        result, stats = single_core([store(A), fence(), compute(2000)], config)
        assert stats.speculations >= 1
        assert stats.sb_drain == 0

    def test_rmo_plain_loads_and_stores_never_speculate(self):
        config = selective_config(ConsistencyModel.RMO)
        result, stats = single_core([store(A), load(B), store(C), load(A)], config)
        assert stats.speculations == 0

    def test_atomic_miss_triggers_speculation(self):
        config = selective_config(ConsistencyModel.RMO)
        result, stats = single_core([atomic(B), compute(2000)], config)
        assert stats.speculations >= 1
        assert stats.sb_drain == 0

    def test_fences_retire_freely_during_speculation(self):
        config = selective_config(ConsistencyModel.RMO)
        result, stats = single_core([store(A), fence(), fence(), fence(),
                                     compute(2000)], config)
        assert stats.speculations == 1
        assert stats.fences == 3
        assert stats.sb_drain == 0


class TestCommit:
    def test_commit_happens_once_store_buffer_drains(self):
        config = selective_config(ConsistencyModel.SC)
        result, stats = single_core([store(A), load(B), compute(3000), load(C)],
                                    config)
        assert stats.commits >= 1
        assert stats.aborts == 0
        # Speculation ends well before the trace does.
        assert stats.spec_cycles < stats.finish_time

    def test_commit_clears_speculative_bits(self):
        config = selective_config(ConsistencyModel.SC)
        system = make_system([[store(A), load(B), compute(3000), load(C)],
                              [compute(1)]], config)
        run_system(system)
        l1 = system.memory.l1(0)
        assert not any(block.speculative for block in l1.blocks())

    def test_speculation_eliminates_ordering_stalls_vs_conventional(self):
        from tests.conftest import tiny_config
        ops = []
        for i in range(10):
            ops.extend([store(block_addr(4000 + i)), load(block_addr(6000 + i)),
                        atomic(block_addr(100)), compute(5)])
        conventional, conv_stats = single_core(list(ops),
                                               tiny_config(ConsistencyModel.SC))
        invisi, inv_stats = single_core(list(ops),
                                        selective_config(ConsistencyModel.SC))
        assert inv_stats.sb_drain < conv_stats.sb_drain
        assert inv_stats.finish_time < conv_stats.finish_time


class TestViolations:
    @staticmethod
    def _conflict_config(**kwargs):
        return selective_config(ConsistencyModel.SC, num_cores=2,
                                memory_latency=600, hop_latency=50, **kwargs)

    def _conflict_ops(self):
        """Core 0 speculates over SHARED; core 1 later writes SHARED."""
        core0 = [store(A), load(SHARED)] + [compute(50)] * 20 + [load(B)]
        core1 = [compute(300), store(SHARED)] + [compute(10)] * 5
        return [core0, core1]

    def test_external_write_aborts_speculation(self):
        config = self._conflict_config()
        result = run_ops(self._conflict_ops(), config)
        stats = result.core_stats[0]
        assert stats.aborts >= 1
        assert stats.violation > 0
        assert stats.replayed_ops > 0

    def test_aborted_work_not_double_counted(self):
        config = self._conflict_config()
        result = run_ops(self._conflict_ops(), config)
        for stats in result.core_stats:
            assert stats.total_accounted() == stats.finish_time

    def test_execution_completes_despite_violations(self):
        config = self._conflict_config()
        result = run_ops(self._conflict_ops(), config)
        assert result.runtime > 0

    def test_forward_progress_after_abort(self):
        # After an abort the next operation executes non-speculatively, so
        # repeated conflicts cannot livelock the core.
        config = self._conflict_config()
        core0 = [store(A), load(SHARED), compute(2000), load(SHARED), compute(2000)]
        core1 = [compute(300), store(SHARED), compute(800), store(SHARED)]
        result = run_ops([core0, core1], config)
        assert result.core_stats[0].finish_time > 0

    def test_external_read_to_spec_written_block_aborts(self):
        config = self._conflict_config()
        core0 = [store(A), store(SHARED)] + [compute(50)] * 20
        core1 = [compute(300), load(SHARED)]
        result = run_ops([core0, core1], config)
        assert result.core_stats[0].aborts >= 1


class TestForcedCommit:
    def test_eviction_pressure_forces_commit(self):
        # A 4-block (2 sets x 2 ways) L1: once both ways of a set hold
        # speculatively accessed blocks, a further fill to that set must
        # force a commit rather than evict speculative state.
        config = selective_config(ConsistencyModel.SC, l1_blocks=4, l1_assoc=2,
                                  memory_latency=600, hop_latency=50)
        num_sets = config.l1.num_sets
        x1, x2, x3 = (block_addr(10_000 + i * num_sets) for i in range(3))
        a_odd = block_addr(10_001)  # maps to the other set
        ops = [load(x2), load(x3), compute(5000),      # warm the target set
               store(a_odd),                           # long store miss
               load(x2), load(x3),                     # pin both ways speculatively
               load(x1),                               # forces the commit
               compute(5000)]
        result, stats = single_core(ops, config)
        assert stats.forced_commits >= 1
        assert stats.commits >= 1


class TestTwoCheckpoints:
    def test_second_checkpoint_taken_during_long_speculation(self):
        config = selective_config(ConsistencyModel.SC, num_checkpoints=2)
        threshold = config.speculation.second_checkpoint_threshold
        ops = [store(A)] + [load(block_addr(12_000 + i)) for i in range(threshold + 8)]
        system = make_system([ops, [compute(1)]], config)
        result = run_system(system)
        stats = result.core_stats[0]
        # More checkpoints than commits were created (the second checkpoint
        # piggybacks on the same speculation episode).
        assert stats.speculations >= 1
        assert stats.commits >= 1

    def test_two_checkpoints_reduce_discarded_work(self):
        """A conflict on a block touched late only rolls back to the second
        checkpoint, so less work is replayed than with a single checkpoint."""
        def ops_for_run():
            core0 = [store(A)]
            core0 += [load(block_addr(13_000 + i)) for i in range(70)]
            core0 += [load(SHARED)]
            core0 += [compute(40)] * 10
            core1 = [compute(2500), store(SHARED), compute(10)]
            return [core0, core1]

        one = run_ops(ops_for_run(),
                      selective_config(ConsistencyModel.SC, num_checkpoints=1,
                                       memory_latency=400, hop_latency=50))
        two = run_ops(ops_for_run(),
                      selective_config(ConsistencyModel.SC, num_checkpoints=2,
                                       memory_latency=400, hop_latency=50))
        if one.core_stats[0].aborts and two.core_stats[0].aborts:
            assert two.core_stats[0].replayed_ops <= one.core_stats[0].replayed_ops

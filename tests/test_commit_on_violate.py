"""Directed tests for the commit-on-violate (CoV) policy."""

from repro.config import ConsistencyModel, ViolationPolicy
from repro.trace.ops import compute, load, store
from tests.conftest import block_addr, continuous_config, run_ops, selective_config

A = block_addr(1000)
B = block_addr(2000)
SHARED = block_addr(500)


def conflict_ops():
    """Core 0 speculates over SHARED while core 1 writes it."""
    core0 = [store(A), load(SHARED)] + [compute(50)] * 20 + [load(B)]
    core1 = [compute(300), store(SHARED)] + [compute(10)] * 5
    return [core0, core1]


def run_policy(policy, cov_timeout=4000, continuous=False):
    if continuous:
        config = continuous_config(violation_policy=policy, num_cores=2,
                                   min_chunk_size=200, cov_timeout=cov_timeout,
                                   memory_latency=600, hop_latency=50)
    else:
        config = selective_config(ConsistencyModel.SC, violation_policy=policy,
                                  num_cores=2, cov_timeout=cov_timeout,
                                  memory_latency=600, hop_latency=50)
    return run_ops(conflict_ops(), config)


class TestSelectiveCoV:
    def test_abort_policy_aborts(self):
        result = run_policy(ViolationPolicy.ABORT)
        assert result.core_stats[0].aborts >= 1

    def test_cov_converts_abort_into_commit(self):
        result = run_policy(ViolationPolicy.COMMIT_ON_VIOLATE)
        stats = result.core_stats[0]
        assert stats.aborts == 0
        assert stats.cov_commits >= 1
        assert stats.violation == 0

    def test_cov_preserves_speculative_work(self):
        aborted = run_policy(ViolationPolicy.ABORT)
        deferred = run_policy(ViolationPolicy.COMMIT_ON_VIOLATE)
        # The aborted run discards work (violation cycles); CoV keeps it all.
        assert aborted.core_stats[0].violation > 0
        assert deferred.core_stats[0].violation == 0

    def test_cov_delays_the_requester(self):
        aborted = run_policy(ViolationPolicy.ABORT)
        deferred = run_policy(ViolationPolicy.COMMIT_ON_VIOLATE)
        # Core 1's conflicting store is held up while core 0 commits.
        assert (deferred.core_stats[1].finish_time
                >= aborted.core_stats[1].finish_time)

    def test_tiny_timeout_falls_back_to_abort(self):
        result = run_policy(ViolationPolicy.COMMIT_ON_VIOLATE, cov_timeout=1)
        stats = result.core_stats[0]
        # The store buffer cannot drain within one cycle, so the deferral
        # expires and the speculation is aborted.
        assert stats.cov_aborts >= 1 or stats.aborts >= 1
        assert stats.cov_commits == 0

    def test_accounting_identity_under_cov(self):
        result = run_policy(ViolationPolicy.COMMIT_ON_VIOLATE)
        for stats in result.core_stats:
            assert stats.total_accounted() == stats.finish_time


class TestContinuousCoV:
    def test_cov_reduces_violation_cycles(self):
        aborted = run_policy(ViolationPolicy.ABORT, continuous=True)
        deferred = run_policy(ViolationPolicy.COMMIT_ON_VIOLATE, continuous=True)
        assert (deferred.aggregate().violation <= aborted.aggregate().violation)

    def test_cov_commits_recorded(self):
        deferred = run_policy(ViolationPolicy.COMMIT_ON_VIOLATE, continuous=True)
        stats = deferred.core_stats[0]
        assert stats.cov_commits >= 1 or stats.aborts == 0

    def test_continuous_cov_avoids_rollbacks(self):
        aborted = run_policy(ViolationPolicy.ABORT, continuous=True)
        deferred = run_policy(ViolationPolicy.COMMIT_ON_VIOLATE, continuous=True)
        assert (deferred.core_stats[0].aborts
                <= aborted.core_stats[0].aborts)
        assert deferred.core_stats[0].violation <= aborted.core_stats[0].violation

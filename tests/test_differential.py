"""Differential equivalence: the three engines must agree byte for byte.

The whole-stack kernel refactor (compiled traces, batched steps, typed
events, allocation-free coherence hit path) is gated by one guarantee:
``simulate(..., engine="fast")`` and ``simulate(..., engine="reference")``
produce *byte-identical* ``RunResult`` JSON -- every counter, every
per-phase breakdown, every events-processed count.  The vectorized batch
tier (``engine="batch"``) extends that guarantee: bulk-retired quiescent
stretches commit exactly what the per-op kernel would have, at any lane
width and for ragged-length lanes.  This suite asserts all of it across
every built-in workload preset, every registered scenario, and the three
controller kinds, plus warmup and rollback-heavy corners, and that
campaign cache keys/entries are engine-independent.
"""

import pytest

from repro.campaign import Job, ResultCache
from repro.campaign.cache import cache_key
from repro.campaign.executor import CampaignExecutor
from repro.engine.batch.lanes import simulate_batch
from repro.engine.simulator import simulate
from repro.engine.system import build_system
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentSettings, make_config
from repro.scenarios.registry import scenario_names
from repro.workloads.presets import workload_names
from repro.workloads.registry import build_trace, resolve_spec

#: one configuration per controller kind (conventional / selective /
#: continuous speculation).
CONTROLLER_CONFIGS = ("sc", "invisi_sc", "invisi_cont")

_CORES = 2
_OPS = 300

ALL_WORKLOADS = tuple(workload_names()) + tuple(scenario_names())


def _settings(ops: int = _OPS, warmup: float = 0.0) -> ExperimentSettings:
    return ExperimentSettings(num_cores=_CORES, ops_per_thread=ops,
                              seeds=(3,), warmup_fraction=warmup)


def _run_both(config, trace, warmup: float = 0.0):
    fast = simulate(config, trace, warmup_fraction=warmup, engine="fast")
    ref = simulate(config, trace, warmup_fraction=warmup, engine="reference")
    return fast, ref


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        trace = build_trace("apache", num_threads=_CORES,
                            ops_per_thread=20, seed=1)
        config = make_config("sc", _settings())
        with pytest.raises(ConfigurationError):
            build_system(config, trace, engine="turbo")

    def test_unknown_engine_message_names_the_valid_kinds(self):
        """The error must tell the user what *is* accepted."""
        trace = build_trace("apache", num_threads=_CORES,
                            ops_per_thread=20, seed=1)
        config = make_config("sc", _settings())
        for entry_point in (
                lambda: simulate(config, trace, engine="turbo"),
                lambda: build_system(config, trace, engine="turbo")):
            with pytest.raises(ConfigurationError) as excinfo:
                entry_point()
            message = str(excinfo.value)
            assert "turbo" in message
            assert "fast|reference|batch" in message

    def test_simulate_rejects_unknown_engine_before_building(self):
        """Validation is eager: no partially wired system, no simulation."""
        trace = build_trace("apache", num_threads=_CORES,
                            ops_per_thread=20, seed=1)
        config = make_config("sc", _settings())
        with pytest.raises(ConfigurationError):
            simulate(config, trace, engine="FAST")  # names are exact

    def test_executor_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(_settings(), engine="turbo")

    def test_fast_engine_batches_and_reference_does_not(self):
        trace = build_trace("apache", num_threads=_CORES,
                            ops_per_thread=20, seed=1)
        config = make_config("sc", _settings())
        fast_system = build_system(config, trace, engine="fast")
        ref_system = build_system(config, trace, engine="reference")
        assert all(core.batching for core in fast_system.cores)
        assert not any(core.batching for core in ref_system.cores)
        assert fast_system.memory.fast
        assert not ref_system.memory.fast


@pytest.mark.parametrize("config_name", CONTROLLER_CONFIGS)
@pytest.mark.parametrize("workload", ALL_WORKLOADS)
class TestByteIdenticalResults:
    def test_run_results_byte_identical(self, config_name, workload):
        """Every preset and scenario, every controller kind."""
        trace = build_trace(workload, num_threads=_CORES,
                            ops_per_thread=_OPS, seed=3)
        config = make_config(config_name, _settings())
        fast, ref = _run_both(config, trace)
        assert fast.to_json() == ref.to_json()


@pytest.mark.parametrize("config_name", CONTROLLER_CONFIGS)
class TestEquivalenceCorners:
    def test_with_warmup_fraction(self, config_name):
        """Warmup resets counters mid-run; both paths must agree."""
        trace = build_trace("apache", num_threads=_CORES,
                            ops_per_thread=_OPS, seed=7)
        config = make_config(config_name, _settings(warmup=0.25))
        fast, ref = _run_both(config, trace, warmup=0.25)
        assert fast.to_json() == ref.to_json()

    def test_contended_scenario_with_warmup(self, config_name):
        """Rollback-heavy false sharing exercises abort/replay batching."""
        trace = build_trace("false-sharing-storm", num_threads=_CORES,
                            ops_per_thread=_OPS, seed=11)
        config = make_config(config_name, _settings(warmup=0.2))
        fast, ref = _run_both(config, trace, warmup=0.2)
        assert fast.to_json() == ref.to_json()

    def test_multiple_seeds(self, config_name):
        config = make_config(config_name, _settings())
        for seed in (1, 2, 5):
            trace = build_trace("ocean", num_threads=_CORES,
                                ops_per_thread=200, seed=seed)
            fast, ref = _run_both(config, trace)
            assert fast.to_json() == ref.to_json()


class TestSpeculativeCountersMatch:
    def test_aborts_and_commits_identical_under_contention(self):
        """The equivalence covers speculation activity, not just runtime."""
        trace = build_trace("false-sharing-storm", num_threads=_CORES,
                            ops_per_thread=_OPS, seed=13)
        config = make_config("invisi_cont", _settings())
        fast, ref = _run_both(config, trace)
        fast_total, ref_total = fast.aggregate(), ref.aggregate()
        assert fast_total.aborts == ref_total.aborts
        assert fast_total.commits == ref_total.commits
        assert fast_total.replayed_ops == ref_total.replayed_ops
        assert fast_total.aborts > 0, "scenario expected to cause rollbacks"


class TestCacheKeyStability:
    def test_cache_key_is_engine_independent(self):
        """The engine is an implementation detail, never a cache dimension."""
        settings = _settings()
        config = make_config("invisi_sc", settings)
        spec = resolve_spec("apache", _OPS)
        key = cache_key(config, spec, seed=3,
                        warmup_fraction=settings.warmup_fraction)
        assert key == cache_key(config, spec, seed=3,
                                warmup_fraction=settings.warmup_fraction)

    def test_cached_entry_bytes_match_reference_result(self, tmp_path):
        """A cache warmed by the fast path serves byte-identical results."""
        settings = _settings()
        cache = ResultCache(tmp_path / "cache")
        executor = CampaignExecutor(settings, jobs=1, cache=cache)
        job = Job("invisi_sc", "apache", 3)
        (fast_result,) = executor.run([job])

        trace = build_trace("apache", num_threads=_CORES,
                            ops_per_thread=_OPS, seed=3)
        ref = simulate(make_config("invisi_sc", settings), trace,
                       warmup_fraction=settings.warmup_fraction,
                       engine="reference")
        stored = cache.path_for(executor.key_for(job)).read_text(
            encoding="utf-8")
        assert fast_result.to_json() == ref.to_json()
        # On-disk cache bytes equal what a reference-path run would store.
        assert stored == ref.to_json()


@pytest.mark.parametrize("config_name", CONTROLLER_CONFIGS)
class TestQueuedInterconnectEquivalence:
    """The opt-in contended interconnect preserves engine equivalence.

    Both kernels issue coherence transactions in the same order, so the
    stateful per-link queues resolve identically; this pins that property
    (and that the contention default stays "none" for every registered
    configuration, which is what keeps the rest of this suite meaningful).
    """

    def test_byte_identical_under_queued_contention(self, config_name):
        from repro.config import resolved_interconnect

        trace = build_trace("false-sharing-storm", num_threads=4,
                            ops_per_thread=_OPS, seed=5)
        base = make_config(config_name, ExperimentSettings(
            num_cores=4, ops_per_thread=_OPS, seeds=(5,),
            warmup_fraction=0.0))
        config = base.replace(interconnect=resolved_interconnect(
            4, hop_latency=base.interconnect.hop_latency,
            contention="queued", link_bandwidth=2))
        fast, ref = _run_both(config, trace)
        assert fast.to_json() == ref.to_json()

    def test_registered_configs_default_contention_free(self, config_name):
        config = make_config(config_name, _settings())
        assert config.interconnect.contention == "none"


#: the conventional consistency models, where the batch tier's bulk path
#: is actually eligible (speculative controllers fall back to pure-exact
#: execution inside the same BatchCore).
CONVENTIONAL_CONFIGS = ("sc", "tso", "rmo")


def _batch_vs_fast(config, trace, warmup: float = 0.0):
    fast = simulate(config, trace, warmup_fraction=warmup, engine="fast")
    batch = simulate(config, trace, warmup_fraction=warmup, engine="batch")
    return fast, batch


@pytest.mark.parametrize("config_name", CONTROLLER_CONFIGS)
@pytest.mark.parametrize("workload", ALL_WORKLOADS)
class TestBatchByteIdenticalResults:
    def test_batch_vs_fast_byte_identical(self, config_name, workload):
        """Every preset and scenario, every controller kind."""
        trace = build_trace(workload, num_threads=_CORES,
                            ops_per_thread=_OPS, seed=3)
        config = make_config(config_name, _settings())
        fast, batch = _batch_vs_fast(config, trace)
        assert fast.to_json() == batch.to_json()


@pytest.mark.parametrize("config_name", CONVENTIONAL_CONFIGS)
class TestBatchConventionalModels:
    """SC / TSO / RMO take the bulk path; warmup splits stretches."""

    def test_batch_vs_fast_with_warmup(self, config_name):
        trace = build_trace("apache", num_threads=_CORES,
                            ops_per_thread=_OPS, seed=7)
        config = make_config(config_name, _settings(warmup=0.25))
        fast, batch = _batch_vs_fast(config, trace, warmup=0.25)
        assert fast.to_json() == batch.to_json()

    def test_batch_vs_fast_scenario_phases(self, config_name):
        """Phase boundaries must break stretches without losing cycles."""
        trace = build_trace("false-sharing-storm", num_threads=_CORES,
                            ops_per_thread=_OPS, seed=11)
        config = make_config(config_name, _settings(warmup=0.2))
        fast, batch = _batch_vs_fast(config, trace, warmup=0.2)
        assert fast.to_json() == batch.to_json()

    def test_batch_vs_fast_single_core(self, config_name):
        """Single-core runs have an empty event heap (the longest stretches)."""
        settings = ExperimentSettings(num_cores=1, ops_per_thread=600,
                                      seeds=(3,), warmup_fraction=0.0)
        trace = build_trace("barnes", num_threads=1,
                            ops_per_thread=600, seed=3)
        config = make_config(config_name, settings)
        fast, batch = _batch_vs_fast(config, trace)
        assert fast.to_json() == batch.to_json()


@pytest.mark.parametrize("cores", (2, 4))
@pytest.mark.parametrize("config_name", CONTROLLER_CONFIGS)
@pytest.mark.parametrize("workload", tuple(scenario_names()))
class TestMulticoreBatchByteIdentical:
    """The coherence-epoch path: every scenario, both machine widths.

    Scenarios are the contended corner (phase-spliced storms, handoffs,
    migratory sharing), so this is where an unsound epoch bound -- one
    that let a stretch run past another core's first coherence traffic --
    would actually desynchronize the engines.
    """

    def test_batch_vs_fast_multicore(self, cores, config_name, workload):
        trace = build_trace(workload, num_threads=cores,
                            ops_per_thread=_OPS, seed=3)
        settings = ExperimentSettings(num_cores=cores, ops_per_thread=_OPS,
                                      seeds=(3,), warmup_fraction=0.0)
        config = make_config(config_name, settings)
        fast, batch = _batch_vs_fast(config, trace)
        assert fast.to_json() == batch.to_json()


class TestMirrorInvalidation:
    def test_mid_run_directory_invalidation_of_mirrored_line(self):
        """A sharer's store must invalidate the numpy residency mirror.

        Core 0 takes line 0 SHARED and then spins on it in long quiescent
        stretches, so the batch engine's residency mirror holds read
        permission for the line.  Core 1 wakes later and stores to the
        same line: the directory invalidates core 0's copy mid-run, the
        state watcher must zero the mirror, and the epoch tracker's
        generation bump must discard any cached horizon -- otherwise core
        0's next stretch would bulk-retire loads the exact kernel serves
        as misses.
        """
        from repro.obs.recorder import TraceRecorder
        from repro.trace.ops import compute, load, store
        from repro.trace.trace import MultiThreadedTrace, Trace

        spin = [load(0), compute(1)] * 120
        # The intruder reads the line first so both cores hold it SHARED
        # (a lone reader is tracked as an EXCLUSIVE owner, whose recall
        # is a different directory path); its store then fans out a true
        # sharer invalidation to the spinning core.
        intruder = ([compute(40)] * 3 + [load(0)] + [compute(40)] * 3
                    + [store(0)] + [compute(1)] * 20)
        trace = MultiThreadedTrace(
            [Trace(spin), Trace(intruder + [compute(1)] *
                                (len(spin) - len(intruder)))],
            name="mirror-invalidation")
        settings = ExperimentSettings(num_cores=2,
                                      ops_per_thread=len(spin),
                                      seeds=(3,), warmup_fraction=0.0)
        config = make_config("sc", settings)
        recorder = TraceRecorder()
        batch = simulate(config, trace, engine="batch", recorder=recorder)
        fast = simulate(config, trace, engine="fast")
        assert batch.to_json() == fast.to_json()
        # The test is vacuous unless the mirror was really exercised on
        # both sides of the invalidation: stretches retired in bulk, the
        # directory invalidated the sharer's copy mid-run, and the
        # downgraded mirror then declined at least one spin stretch.
        assert recorder.counters["batch.retired"] > 0
        assert recorder.counters["coherence.invalidations"] > 0
        assert recorder.counters["batch.decline.residency"] > 0


@pytest.mark.parametrize("width", (1, 3, 8))
class TestLaneWidthIndependence:
    """A lane's width is a performance knob, never a results dimension."""

    def test_lane_matches_per_cell_fast(self, width):
        config = make_config("sc", _settings())
        traces = [build_trace("apache", num_threads=_CORES,
                              ops_per_thread=_OPS, seed=100 + i)
                  for i in range(width)]
        lane = simulate_batch(config, traces,
                              warmup_fraction=0.0)
        assert len(lane) == width
        for trace, result in zip(traces, lane):
            fast = simulate(config, trace, engine="fast")
            assert result.to_json() == fast.to_json()

    def test_lane_matches_width_one_lanes(self, width):
        """Runs share only immutable tables: width-N == N times width-1."""
        config = make_config("tso", _settings())
        traces = [build_trace("ocean", num_threads=_CORES,
                              ops_per_thread=200, seed=40 + i)
                  for i in range(width)]
        wide = simulate_batch(config, traces, warmup_fraction=0.1)
        narrow = [simulate_batch(config, [trace], warmup_fraction=0.1)[0]
                  for trace in traces]
        for a, b in zip(wide, narrow):
            assert a.to_json() == b.to_json()


class TestRaggedLanes:
    def test_ragged_length_traces_in_one_lane(self):
        """Rows of different lengths stack against the lane-wide maximum."""
        config = make_config("sc", _settings())
        traces = [build_trace("apache", num_threads=_CORES,
                              ops_per_thread=ops, seed=5)
                  for ops in (60, 300, 137)]
        lane = simulate_batch(config, traces, warmup_fraction=0.0)
        for trace, result in zip(traces, lane):
            fast = simulate(config, trace, engine="fast")
            assert result.to_json() == fast.to_json()

    def test_mixed_workloads_in_one_lane(self):
        """A lane only requires a shared config, not a shared workload."""
        config = make_config("rmo", _settings())
        traces = [build_trace(name, num_threads=_CORES,
                              ops_per_thread=_OPS, seed=9)
                  for name in ("apache", "barnes", "ocean")]
        lane = simulate_batch(config, traces, warmup_fraction=0.0)
        for trace, result in zip(traces, lane):
            fast = simulate(config, trace, engine="fast")
            assert result.to_json() == fast.to_json()


class TestBatchCampaignIntegration:
    def test_batch_warmed_cache_serves_fast_engine(self, tmp_path):
        """Cache entries written under batch are hits for fast, bytes equal."""
        settings = _settings()
        cache = ResultCache(tmp_path / "cache")
        batch_exec = CampaignExecutor(settings, jobs=1, cache=cache,
                                      engine="batch")
        jobs = [Job("sc", "apache", 3), Job("sc", "barnes", 3),
                Job("invisi_sc", "apache", 3)]
        batch_results = batch_exec.run(jobs)
        assert batch_exec.last_report.simulated == len(jobs)

        fast_exec = CampaignExecutor(settings, jobs=1, cache=cache,
                                     engine="fast")
        fast_results = fast_exec.run(jobs)
        assert fast_exec.last_report.simulated == 0
        assert fast_exec.last_report.cache_hits == len(jobs)
        for a, b in zip(batch_results, fast_results):
            assert a.to_json() == b.to_json()

    def test_serial_batch_campaign_matches_fast_campaign(self):
        """The executor's lane grouping changes nothing observable."""
        settings = _settings()
        jobs = [Job(c, w, 3) for c in ("sc", "tso")
                for w in ("apache", "ocean")]
        batch = CampaignExecutor(settings, engine="batch").run(jobs)
        fast = CampaignExecutor(settings, engine="fast").run(jobs)
        for a, b in zip(batch, fast):
            assert a.to_json() == b.to_json()


@pytest.mark.parametrize("engine", ("fast", "reference", "batch"))
@pytest.mark.parametrize("config_name", CONTROLLER_CONFIGS)
class TestTelemetryInvariance:
    """Recording telemetry must never change what is simulated.

    Recorders only observe -- they never schedule events or advance
    clocks -- so a run with a live :class:`TraceRecorder` attached must be
    byte-identical to the same run with telemetry off, on every engine and
    controller kind.  The contended scenario is the interesting case: the
    abort/rollback hooks sit on the exact paths speculation exercises.
    """

    def test_traced_run_byte_identical_to_untraced(self, engine, config_name):
        from repro.obs import TraceRecorder

        trace = build_trace("false-sharing-storm", num_threads=_CORES,
                            ops_per_thread=_OPS, seed=3)
        config = make_config(config_name, _settings(warmup=0.2))
        plain = simulate(config, trace, warmup_fraction=0.2, engine=engine)
        recorder = TraceRecorder()
        traced = simulate(config, trace, warmup_fraction=0.2, engine=engine,
                          recorder=recorder)
        assert plain.to_json() == traced.to_json()
        # The recorder saw the run: at minimum the end-of-run gauges.
        assert recorder.counters

    def test_null_recorder_byte_identical_to_off(self, engine, config_name):
        """The disabled recorder is normalized away at build time."""
        from repro.obs import NullRecorder

        trace = build_trace("apache", num_threads=_CORES,
                            ops_per_thread=_OPS, seed=7)
        config = make_config(config_name, _settings())
        plain = simulate(config, trace, engine=engine)
        nulled = simulate(config, trace, engine=engine,
                          recorder=NullRecorder())
        assert plain.to_json() == nulled.to_json()

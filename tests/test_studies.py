"""Tests for the declarative study framework (repro.studies)."""

import csv
import json

import pytest

import repro.experiments  # noqa: F401  (imports register the built-in studies)
from repro.campaign import DEFAULT_REGISTRY, ResultCache
from repro.cli import main
from repro.errors import StudyError
from repro.experiments import ExperimentSettings, scaling_study
from repro.experiments.common import CONFIG_NAMES
from repro.studies import (
    DEFAULT_STUDY_REGISTRY,
    METRICS,
    StudyRegistry,
    StudySpec,
    StudyTable,
    compile_plan,
    run_study,
)
from repro.studies.runner import overlay_registry

TINY = ExperimentSettings(num_cores=2, ops_per_thread=300, seeds=(1,),
                          workloads=("barnes",))

ALL_STUDIES = ("figure1", "figure8", "figure9", "figure10", "figure11",
               "figure12", "ablation-sb", "ablation-cov", "scaling",
               "scenarios")


class TestRegistry:
    def test_all_builtin_studies_registered(self):
        assert set(ALL_STUDIES) <= set(DEFAULT_STUDY_REGISTRY.names())

    def test_duplicate_registration_rejected(self):
        registry = StudyRegistry()
        spec = DEFAULT_STUDY_REGISTRY.get("figure1")
        registry.register(spec)
        with pytest.raises(StudyError):
            registry.register(spec)

    def test_unknown_study_rejected(self):
        with pytest.raises(StudyError):
            DEFAULT_STUDY_REGISTRY.get("figure99")


class TestPlanCompilation:
    def test_unified_plan_dedups_shared_cells(self):
        """Acceptance: one plan's job count < the sum of per-study cells."""
        settings = ExperimentSettings()  # default scale; compile only
        specs = DEFAULT_STUDY_REGISTRY.specs()
        plan = compile_plan(specs, settings)
        per_study_total = sum(len(spec.cells(settings)) for spec in specs)
        assert plan.total_cells == per_study_total
        assert len(plan.unique_cells) < plan.total_cells
        # The sc baseline alone is shared by figures 1, 8, 9, and 12.
        assert plan.deduplicated >= 3 * len(settings.workloads)

    def test_duplicate_study_names_rejected(self):
        spec = DEFAULT_STUDY_REGISTRY.get("figure1")
        with pytest.raises(StudyError):
            compile_plan([spec, spec], TINY)

    def test_plan_merges_extra_configs(self):
        plan = compile_plan([DEFAULT_STUDY_REGISTRY.get("ablation-sb"),
                             DEFAULT_STUDY_REGISTRY.get("ablation-cov")], TINY)
        registry = plan.registry()
        assert "invisi_sc_sb8" in registry
        assert "invisi_cont_cov_t1000" in registry
        assert "invisi_sc_sb8" not in DEFAULT_REGISTRY  # no global pollution

    def test_one_prefetch_serves_every_study(self, tmp_path):
        """After plan.execute, rebuilding each study simulates nothing."""
        specs = (DEFAULT_STUDY_REGISTRY.get("figure1"),
                 DEFAULT_STUDY_REGISTRY.get("figure8"),
                 DEFAULT_STUDY_REGISTRY.get("figure9"))
        plan = compile_plan(specs, TINY)
        assert plan.total_cells == 15 and len(plan.unique_cells) == 6
        runner = plan.runner(cache=ResultCache(tmp_path / "cache"))
        report = plan.execute(runner)
        assert report.simulated == 6
        for spec in specs:
            result = run_study(spec, TINY, study_runner=runner)
            assert result.format()
            # the per-study pass only reads memoized results.
            for sub in runner._runners.values():
                assert sub.last_report.simulated == 0


class TestRunStudy:
    def test_writes_json_and_csv_artifacts(self, tmp_path):
        result = run_study("figure10", TINY, out_dir=tmp_path)
        assert "Figure 10" in result.format()

        payload = json.loads((tmp_path / "figure10.json").read_text())
        assert payload["schema"] == 1
        assert payload["study"] == "figure10"
        assert payload["settings"]["num_cores"] == TINY.num_cores
        assert payload["grid"]["workloads"] == ["barnes"]
        (table,) = payload["tables"]
        assert table["columns"] == ["workload", "config", "speculation_pct"]
        assert len(table["rows"]) == 3

        with open(tmp_path / "figure10.csv", newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["table", "workload", "config", "speculation_pct"]
        assert len(rows) == 1 + len(table["rows"])
        assert rows[1][1] == "barnes"

    def test_repeated_run_is_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_study("figure1", TINY, cache=cache)
        assert first.format()
        # a fresh runner against the same cache simulates nothing.
        runner = compile_plan([DEFAULT_STUDY_REGISTRY.get("figure1")],
                              TINY).runner(cache=cache)
        report = runner.run_cells(
            DEFAULT_STUDY_REGISTRY.get("figure1").cells(TINY))
        assert report.simulated == 0
        assert report.cache_hits == 3

    def test_scaling_study_core_count_axis(self, tmp_path):
        spec = scaling_study(core_counts=(2, 4), configs=("sc",),
                             scenarios=("false-sharing-storm",))
        settings = ExperimentSettings(num_cores=4, ops_per_thread=240,
                                      seeds=(1,),
                                      workloads=("false-sharing-storm",))
        cells = spec.cells(settings)
        assert sorted({cell.num_cores for cell in cells}) == [2, 4]
        result = run_study(spec, settings, out_dir=tmp_path)
        assert result.report.simulated == 2
        payload = json.loads((tmp_path / "scaling.json").read_text())
        assert [t["name"] for t in payload["tables"]] == [
            "throughput_scaling", "stall_attribution"]

    def test_unknown_metric_rejected(self):
        assert "throughput_ikc" in METRICS
        spec = StudySpec(
            name="bad-metric", title="", configs=("sc",),
            build=lambda ctx: ctx.mean_metric("bogus", "sc", "barnes"),
            tabulate=lambda result: [])
        with pytest.raises(StudyError):
            run_study(spec, TINY)


class TestOverlayRegistry:
    def test_extras_resolve_and_parent_stays_live(self):
        overlay = overlay_registry(
            DEFAULT_REGISTRY,
            {"test_overlay_cfg": DEFAULT_REGISTRY.factory("sc")})
        assert "test_overlay_cfg" in overlay
        assert "sc" in overlay
        assert "test_overlay_cfg" not in DEFAULT_REGISTRY
        DEFAULT_REGISTRY.register("test_live_cfg",
                                  DEFAULT_REGISTRY.factory("sc"))
        try:
            assert "test_live_cfg" in overlay  # parent lookups are live
        finally:
            DEFAULT_REGISTRY.unregister("test_live_cfg")

    def test_conflicting_factory_rejected(self):
        with pytest.raises(StudyError):
            overlay_registry(DEFAULT_REGISTRY,
                             {"sc": DEFAULT_REGISTRY.factory("tso")})

    def test_identical_factory_is_noop(self):
        overlay = overlay_registry(DEFAULT_REGISTRY,
                                   {"sc": DEFAULT_REGISTRY.factory("sc")})
        assert overlay is DEFAULT_REGISTRY


class TestLiveConfigNames:
    def test_runtime_registrations_are_visible(self):
        """Satellite fix: CONFIG_NAMES must not be an import-time snapshot."""
        before = len(CONFIG_NAMES)
        DEFAULT_REGISTRY.register("test_live_names",
                                  DEFAULT_REGISTRY.factory("sc"))
        try:
            assert "test_live_names" in CONFIG_NAMES
            assert len(CONFIG_NAMES) == before + 1
            assert CONFIG_NAMES == DEFAULT_REGISTRY.names()
        finally:
            DEFAULT_REGISTRY.unregister("test_live_names")
        assert "test_live_names" not in CONFIG_NAMES


class TestStudyTable:
    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            StudyTable("bad", ("a", "b"), [[1]])


class TestStudyCLI:
    def test_list_shows_every_registered_study(self, capsys):
        assert main(["study", "list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_STUDIES:
            assert name in out

    def test_run_cold_then_cached_with_artifacts(self, capsys, tmp_path):
        args = ["study", "run", "figure1", "--cores", "2", "--ops", "300",
                "--workloads", "barnes",
                "--cache-dir", str(tmp_path / "cache"),
                "--out-dir", str(tmp_path / "artifacts")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "3 cells across 1 studies -> 3 unique jobs" in out
        assert "Figure 1" in out
        assert "3 simulated, 0 cache hits" in out
        assert (tmp_path / "artifacts" / "figure1.json").exists()
        assert (tmp_path / "artifacts" / "figure1.csv").exists()

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 3 cache hits" in out

    def test_run_multiple_studies_one_plan(self, capsys, tmp_path):
        args = ["study", "run", "figure1", "figure9", "--cores", "2",
                "--ops", "300", "--workloads", "barnes",
                "--cache-dir", str(tmp_path / "cache"),
                "--out-dir", str(tmp_path / "artifacts")]
        assert main(args) == 0
        out = capsys.readouterr().out
        # figure1's grid is a subset of figure9's: 3 + 6 cells -> 6 jobs.
        assert "9 cells across 2 studies -> 6 unique jobs" in out
        assert (tmp_path / "artifacts" / "figure9.csv").exists()

    def test_run_without_names_rejected(self, capsys):
        assert main(["study", "run"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_unknown_study_rejected(self, capsys):
        assert main(["study", "run", "figure99"]) == 2
        assert "unknown study" in capsys.readouterr().err

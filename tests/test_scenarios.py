"""Tests for the phase-structured scenario engine.

Covers the sharing-pattern primitives' characteristic coherence behaviour,
phase splicing determinism, per-phase stall attribution, the scenario
registry, and the campaign/CLI integration (including serial-vs-parallel
equivalence of scenario cells).
"""

import pytest

from repro.cli import main
from repro.campaign import CampaignExecutor, Job, ResultCache
from repro.coherence.memory_system import MemorySystem
from repro.config import ConsistencyModel
from repro.cpu.stats import COUNTER_FIELDS, CoreStats
from repro.engine.simulator import simulate
from repro.errors import ScenarioError, TraceError, WorkloadError
from repro.experiments.common import ExperimentSettings
from repro.scenarios import (
    PhaseSpec,
    ScenarioRegistry,
    ScenarioSpec,
    generate_scenario,
    pattern_names,
    scenario_names,
    scenario_spec,
)
from repro.scenarios.patterns import WORDS_PER_BLOCK
from repro.stats.phases import (
    format_phase_breakdown,
    phase_breakdown,
    phase_labels,
)
from repro.trace.ops import OpKind
from repro.trace.trace import MultiThreadedTrace, Trace
from repro.workloads.generator import BLOCK_BYTES
from repro.workloads.presets import preset
from repro.workloads.registry import build_trace, resolve_spec
from tests.conftest import selective_config, tiny_config


def pattern_trace(name, num_threads=2, count=300, seed=1, **params):
    """A single-phase scenario trace for one primitive."""
    spec = ScenarioSpec(name=f"unit-{name}",
                        phases=(PhaseSpec(name, count, pattern=name,
                                          params=params),))
    return generate_scenario(spec, num_threads=num_threads, seed=seed)


def writes_by_thread(trace):
    """{thread: set of written word addresses}."""
    return {t.thread_id: {op.address for op in t if op.writes} for t in trace}


def blocks(addresses):
    return {addr // BLOCK_BYTES for addr in addresses}


def replay_round_robin(trace, config):
    """Feed a trace's memory ops through a recording MemorySystem.

    Interleaves threads round-robin at one op per turn, which is enough to
    observe the pattern's coherence transactions without the full timing
    model.
    """
    mem = MemorySystem(config, record_transactions=True)
    cursors = [iter(t) for t in trace]
    now = 0
    live = set(range(len(cursors)))
    while live:
        for tid in sorted(live):
            op = next(cursors[tid], None)
            if op is None:
                live.discard(tid)
                continue
            if op.is_memory:
                outcome = mem.access(tid, op.address, is_write=op.writes, now=now)
                now = max(now, outcome.completion_time)
            now += 1
    return mem


class TestPhaseSpecValidation:
    def test_requires_exactly_one_of_workload_or_pattern(self):
        with pytest.raises(ScenarioError):
            PhaseSpec("p", 100)
        with pytest.raises(ScenarioError):
            PhaseSpec("p", 100, workload=preset("apache"), pattern="barrier")

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ScenarioError):
            PhaseSpec("p", 100, pattern="quantum_entanglement")

    def test_rejects_params_without_pattern(self):
        with pytest.raises(ScenarioError):
            PhaseSpec("p", 100, workload=preset("apache"), params={"x": 1})

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ScenarioError):
            PhaseSpec("p", 0, pattern="barrier")

    def test_scenario_needs_phases(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="empty")


class TestScenarioScaling:
    def make(self):
        return ScenarioSpec(name="s", phases=(
            PhaseSpec("a", 1000, pattern="barrier"),
            PhaseSpec("b", 500, pattern="false_sharing"),
            PhaseSpec("c", 1500, pattern="rw_lock"),
        ))

    def test_scaled_total_is_exact(self):
        for total in (3, 7, 100, 999, 3000, 4001):
            scaled = self.make().scaled(total)
            assert scaled.total_ops_per_thread == total
            assert all(p.ops_per_thread >= 1 for p in scaled.phases)

    def test_scaled_preserves_proportions(self):
        scaled = self.make().scaled(600)
        lengths = [p.ops_per_thread for p in scaled.phases]
        assert lengths == [200, 100, 300]

    def test_scaling_below_phase_count_rejected(self):
        with pytest.raises(ScenarioError):
            self.make().scaled(2)


class TestProducerConsumer:
    def test_migratory_handoff_blocks(self):
        """Blocks a producer writes are read by exactly its ring successor."""
        trace = pattern_trace("producer_consumer", num_threads=3, count=400)
        written = writes_by_thread(trace)
        for tid in range(3):
            successor = (tid + 1) % 3
            other = (tid + 2) % 3
            fills = blocks({op.address for op in trace[tid]
                            if op.label == "queue_fill"})
            takes_succ = blocks({op.address for op in trace[successor]
                                 if op.label == "queue_take"})
            takes_other = blocks({op.address for op in trace[other]
                                  if op.label == "queue_take"})
            assert fills and fills <= takes_succ
            assert not (fills & takes_other)

    def test_consumer_gets_dirty_forwards(self):
        """Replaying the pattern produces owner-forwarded transfers."""
        trace = pattern_trace("producer_consumer", num_threads=2, count=200)
        mem = replay_round_robin(trace, tiny_config(num_cores=2))
        forwards = [t for t in mem.transactions
                    if t.forwarded_from_owner is not None]
        assert forwards, "producer-consumer should trigger migratory forwards"


class TestBarrier:
    def test_all_threads_share_the_arrival_counter(self):
        trace = pattern_trace("barrier", num_threads=4, count=300, interval=20)
        counters = [blocks({op.address for op in t if op.label == "barrier_arrive"})
                    for t in trace]
        assert all(c == counters[0] and len(c) == 1 for c in counters)

    def test_episodes_emit_atomic_fence_spin(self):
        trace = pattern_trace("barrier", num_threads=2, count=300, interval=20)
        ops = list(trace[0])
        arrivals = [i for i, op in enumerate(ops) if op.label == "barrier_arrive"]
        assert arrivals
        for i in arrivals[:-1]:
            assert ops[i].kind is OpKind.ATOMIC
            assert ops[i + 1].kind is OpKind.FENCE
            assert ops[i + 2].label == "barrier_spin"

    def test_local_scratch_disjoint_across_threads(self):
        trace = pattern_trace("barrier", num_threads=2, count=300)
        locals_ = [blocks({op.address for op in t if op.label == "barrier_local"})
                   for t in trace]
        assert not (locals_[0] & locals_[1])


class TestFalseSharing:
    def test_distinct_words_same_blocks(self):
        """No word-level race, full block-level sharing."""
        trace = pattern_trace("false_sharing", num_threads=4, count=300,
                              hot_blocks=2)
        written = writes_by_thread(trace)
        for a in range(4):
            for b in range(a + 1, 4):
                assert not (written[a] & written[b]), "no two threads share a word"
                assert blocks(written[a]) == blocks(written[b]), \
                    "every thread pounds the same blocks"

    def test_causes_invalidations(self):
        trace = pattern_trace("false_sharing", num_threads=2, count=200,
                              hot_blocks=1, write_fraction=0.6)
        mem = replay_round_robin(trace, tiny_config(num_cores=2))
        # Reader copies are invalidated by the other thread's writes ...
        invalidations = [t for t in mem.transactions if t.invalidated_sharers]
        assert invalidations, "false sharing should invalidate reader copies"
        # ... and block ownership ping-pongs between the writers.
        from repro.coherence.messages import TransactionKind
        stolen = {t.requester for t in mem.transactions
                  if t.kind is TransactionKind.GETM
                  and t.forwarded_from_owner is not None}
        assert stolen == {0, 1}, "ownership should migrate both ways"

    def test_many_threads_spill_to_more_blocks(self):
        trace = pattern_trace("false_sharing", num_threads=WORDS_PER_BLOCK + 1,
                              count=80)
        written = writes_by_thread(trace)
        assert not (written[0] & written[WORDS_PER_BLOCK])
        assert not (blocks(written[0]) & blocks(written[WORDS_PER_BLOCK]))


class TestRwLock:
    def test_data_blocks_read_shared_and_writer_invalidates(self):
        trace = pattern_trace("rw_lock", num_threads=3, count=400,
                              write_fraction=0.3, data_blocks=4)
        reads = [blocks({op.address for op in t if op.label == "rw_read"})
                 for t in trace]
        writes = [blocks({op.address for op in t if op.label == "rw_write"})
                  for t in trace]
        shared_reads = reads[0] & reads[1] & reads[2]
        assert shared_reads, "data blocks are read by every thread"
        all_writes = writes[0] | writes[1] | writes[2]
        assert all_writes & shared_reads, "writer hits the read-shared blocks"

    def test_reader_count_is_one_shared_atomic_block(self):
        trace = pattern_trace("rw_lock", num_threads=2, count=300,
                              write_fraction=0.0)
        acquires = [blocks({op.address for op in t
                            if op.label == "rw_reader_acquire"}) for t in trace]
        assert acquires[0] == acquires[1] and len(acquires[0]) == 1


class TestWorkStealing:
    def test_mostly_local_with_remote_steals(self):
        trace = pattern_trace("work_stealing", num_threads=2, count=500,
                              steal_fraction=0.3)
        for t in trace:
            local = [op for op in t if op.label in ("deque_push", "deque_pop",
                                                    "deque_bottom")]
            steals = [op for op in t if op.label == "steal_cas"]
            assert len(local) > len(steals) > 0

    def test_steals_cas_the_victims_control_block(self):
        trace = pattern_trace("work_stealing", num_threads=2, count=500,
                              steal_fraction=0.5)
        own_ctrl = [blocks({op.address for op in t if op.label == "deque_bottom"})
                    for t in trace]
        steal_ctrl = [blocks({op.address for op in t if op.label == "steal_cas"})
                      for t in trace]
        assert steal_ctrl[0] and steal_ctrl[0].isdisjoint(own_ctrl[0])
        assert steal_ctrl[0] == own_ctrl[1], "steals CAS the victim's deque"
        for t in trace:
            for op in t:
                if op.label == "steal_cas":
                    assert op.kind is OpKind.ATOMIC


class TestPhaseSplicing:
    def scenario(self):
        return ScenarioSpec(name="splice", phases=(
            PhaseSpec("mix", 200, workload=preset("apache")),
            PhaseSpec("fs", 150, pattern="false_sharing"),
            PhaseSpec("bar", 250, pattern="barrier"),
        ))

    def test_exact_lengths_and_metadata(self):
        trace = generate_scenario(self.scenario(), num_threads=3, seed=7)
        assert all(len(t) == 600 for t in trace)
        assert trace.phases == (("mix", 200), ("fs", 150), ("bar", 250))
        assert trace.phase_bounds == (200, 350, 600)
        assert trace.phase_names == ("mix", "fs", "bar")

    def test_deterministic_across_invocations(self):
        a = generate_scenario(self.scenario(), num_threads=3, seed=7)
        b = generate_scenario(self.scenario(), num_threads=3, seed=7)
        for ta, tb in zip(a, b):
            assert list(ta) == list(tb)

    def test_seeds_and_threads_differ(self):
        a = generate_scenario(self.scenario(), num_threads=2, seed=1)
        b = generate_scenario(self.scenario(), num_threads=2, seed=2)
        assert list(a[0]) != list(b[0])
        assert list(a[0]) != list(a[1])

    def test_editing_one_phase_leaves_others_bitwise_unchanged(self):
        base = self.scenario()
        edited = ScenarioSpec(name="splice", phases=(
            base.phases[0],
            PhaseSpec("fs", 150, pattern="false_sharing",
                      params={"hot_blocks": 7}),
            base.phases[2],
        ))
        a = generate_scenario(base, num_threads=2, seed=5)
        b = generate_scenario(edited, num_threads=2, seed=5)
        for ta, tb in zip(a, b):
            ops_a, ops_b = list(ta), list(tb)
            assert ops_a[:200] == ops_b[:200], "phase 1 unchanged"
            assert ops_a[350:] == ops_b[350:], "phase 3 unchanged"
            assert ops_a[200:350] != ops_b[200:350], "phase 2 changed"

    def test_trace_phase_layout_validated(self):
        with pytest.raises(TraceError):
            MultiThreadedTrace([Trace([], thread_id=0)], phases=[("p", 10)])


class TestPhaseAttribution:
    def run_scenario(self, config, warmup=0.0, seed=3):
        spec = scenario_spec("pattern-tour").scaled(1000)
        trace = generate_scenario(spec, num_threads=2, seed=seed)
        return simulate(config, trace, warmup_fraction=warmup)

    def assert_sums_match(self, result):
        agg = result.aggregate()
        total = CoreStats()
        for per_core in result.phase_stats:
            for stats in per_core:
                total.merge(stats)
        for name in COUNTER_FIELDS:
            assert getattr(total, name) == getattr(agg, name), name

    def test_phases_partition_the_aggregate_conventional(self):
        result = self.run_scenario(tiny_config(ConsistencyModel.SC))
        assert len(result.phase_stats) == 5
        self.assert_sums_match(result)

    def test_phases_partition_the_aggregate_speculative(self):
        result = self.run_scenario(selective_config(ConsistencyModel.SC))
        assert result.aggregate().speculations > 0
        self.assert_sums_match(result)

    def test_phases_partition_with_warmup(self):
        result = self.run_scenario(tiny_config(ConsistencyModel.SC), warmup=0.3)
        self.assert_sums_match(result)
        first = CoreStats()
        for stats in result.phase_stats[0]:
            first.merge(stats)
        full = self.run_scenario(tiny_config(ConsistencyModel.SC), warmup=0.0)
        first_full = CoreStats()
        for stats in full.phase_stats[0]:
            first_full.merge(stats)
        assert first.total_accounted() < first_full.total_accounted()

    def test_no_negative_phase_counters(self):
        result = self.run_scenario(selective_config(ConsistencyModel.SC))
        for per_core in result.phase_stats:
            for stats in per_core:
                for name in COUNTER_FIELDS:
                    assert getattr(stats, name) >= 0, name

    def test_breakdown_and_labels(self):
        result = self.run_scenario(tiny_config(ConsistencyModel.SC))
        labels = phase_labels(result)
        assert labels[0].startswith("1:") and len(labels) == 5
        breakdown = phase_breakdown(result)
        for values in breakdown.values():
            assert sum(values.values()) == pytest.approx(100.0, abs=1e-6)
        text = format_phase_breakdown(result)
        assert "per-phase" in text.lower() or "phase" in text

    def test_plain_workload_runs_have_no_phase_stats(self):
        trace = build_trace("apache", num_threads=2, ops_per_thread=300, seed=1)
        result = simulate(tiny_config(ConsistencyModel.SC), trace)
        assert result.phase_stats is None and result.phase_names is None
        assert phase_labels(result) == []

    def test_result_round_trip_preserves_phase_stats(self):
        result = self.run_scenario(tiny_config(ConsistencyModel.SC))
        restored = type(result).from_json(result.to_json())
        assert restored.to_json() == result.to_json()
        assert restored.phase_names == result.phase_names


class TestScenarioRegistry:
    def test_builtins_have_at_least_three_phases(self):
        assert len(scenario_names()) >= 6
        for name in scenario_names():
            assert len(scenario_spec(name).phases) >= 3

    def test_every_primitive_is_used_by_some_builtin(self):
        used = {p.pattern for name in scenario_names()
                for p in scenario_spec(name).phases if p.pattern}
        assert used == set(pattern_names())

    def test_register_unregister(self):
        registry = ScenarioRegistry()
        spec = ScenarioSpec(name="tmp", phases=(
            PhaseSpec("a", 10, pattern="barrier"),))
        registry.register(spec)
        assert "tmp" in registry and registry.get("tmp") is spec
        with pytest.raises(ScenarioError):
            registry.register(spec)
        registry.unregister("tmp")
        assert "tmp" not in registry
        with pytest.raises(ScenarioError):
            registry.unregister("tmp")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            scenario_spec("doom")

    def test_preset_shadowing_names_rejected(self):
        registry = ScenarioRegistry()
        shadow = ScenarioSpec(name="apache", phases=(
            PhaseSpec("a", 10, pattern="barrier"),))
        with pytest.raises(ScenarioError, match="collides"):
            registry.register(shadow)

    def test_names_do_not_collide_with_workload_presets(self):
        from repro.workloads.presets import WORKLOAD_PRESETS
        assert not set(scenario_names()) & set(WORKLOAD_PRESETS)


class TestCampaignIntegration:
    def test_build_trace_accepts_scenario_names(self):
        trace = build_trace("bsp-compute", num_threads=2, ops_per_thread=300,
                            seed=1)
        assert trace.name == "bsp-compute"
        assert all(len(t) == 300 for t in trace)
        assert trace.phases is not None

    def test_resolve_spec_distinguishes_kinds(self):
        from repro.workloads.spec import WorkloadSpec
        workload = resolve_spec("apache", 100)
        assert isinstance(workload, WorkloadSpec)
        assert workload.ops_per_thread == 100
        scenario = resolve_spec("task-pool", 120)
        assert isinstance(scenario, ScenarioSpec)
        assert scenario.total_ops_per_thread == 120

    def test_unknown_name_lists_both_kinds(self):
        with pytest.raises(WorkloadError, match="scenarios:"):
            resolve_spec("doom")

    def test_worker_payload_ships_resolved_spec_not_name(self):
        """Runtime-registered scenarios must survive spawn-based pools.

        Workers re-import the registries from scratch under the 'spawn'
        start method, so the payload must carry the resolved spec object
        rather than a name for the worker to look up.
        """
        from repro.scenarios.registry import DEFAULT_SCENARIO_REGISTRY

        runtime = ScenarioSpec(name="runtime-only", phases=(
            PhaseSpec("a", 100, pattern="barrier"),
            PhaseSpec("b", 100, pattern="false_sharing"),
            PhaseSpec("c", 100, pattern="rw_lock"),
        ))
        DEFAULT_SCENARIO_REGISTRY.register(runtime)
        try:
            settings = ExperimentSettings(num_cores=2, ops_per_thread=300,
                                          seeds=(1,),
                                          workloads=("runtime-only",))
            executor = CampaignExecutor(settings, jobs=2)
            payload = executor._payload(Job("sc", "runtime-only", 1))
            assert isinstance(payload[1], ScenarioSpec)
            assert payload[1].total_ops_per_thread == 300
            results = executor.run([Job("sc", "runtime-only", 1)])
            assert results[0].phase_names == ("a", "b", "c")
        finally:
            DEFAULT_SCENARIO_REGISTRY.unregister("runtime-only")

    def test_serial_and_parallel_scenario_cells_identical(self, tmp_path):
        settings = ExperimentSettings(num_cores=2, ops_per_thread=400,
                                      seeds=(1,), workloads=("task-pool",))
        jobs = [Job("sc", "task-pool", 1), Job("invisi_sc", "task-pool", 1)]

        serial = CampaignExecutor(settings, jobs=1).run(jobs)
        parallel_cache = ResultCache(tmp_path / "cache")
        parallel = CampaignExecutor(settings, jobs=2,
                                    cache=parallel_cache).run(jobs)
        for a, b in zip(serial, parallel):
            assert a.to_json() == b.to_json()

        # Cached cells round-trip the per-phase stats bitwise.
        rerun = CampaignExecutor(settings, jobs=1, cache=parallel_cache)
        cached = rerun.run(jobs)
        assert rerun.last_report.cache_hits == 2
        for a, b in zip(parallel, cached):
            assert a.to_json() == b.to_json()
            assert b.phase_stats is not None


class TestScenarioCli:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_workloads_list(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        assert "apache" in out and "TPC-C" in out

    def test_scenario_run_small(self, capsys, tmp_path):
        code = main(["scenario", "run", "false-sharing-storm", "--small",
                     "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-phase stall breakdown" in out
        assert "1:serve" in out and "2:storm" in out and "3:recover" in out
        assert "[campaign]" in out

    def test_scenario_run_unknown_name(self, capsys):
        assert main(["scenario", "run", "doom", "--small", "--no-cache"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_sweep_accepts_scenario_names(self, capsys, tmp_path):
        code = main(["sweep", "--configs", "sc", "--workloads",
                     "bsp-compute,apache", "--cores", "2", "--ops", "300",
                     "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "bsp-compute" in out and "apache" in out

    def test_simulate_scenario_prints_phase_table(self, capsys):
        code = main(["simulate", "--workload", "pattern-tour", "--cores", "2",
                     "--ops", "400", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Per-phase stall breakdown" in out

    def test_figure_scenarios(self, capsys, tmp_path):
        code = main(["figure", "scenarios", "--cores", "2", "--ops", "400",
                     "--workloads", "bsp-compute",
                     "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "Scenario phases" in out
        assert "bsp-compute/1:compute-a" in out

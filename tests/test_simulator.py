"""Tests for the simulation engine (system builder, simulator, results)."""

import pytest

from repro.config import ConsistencyModel, SpeculationConfig, SpeculationMode
from repro.engine.results import RunResult, aggregate_breakdown
from repro.engine.simulator import Simulator, simulate
from repro.engine.system import build_system
from repro.errors import ConfigurationError, SimulationError
from repro.trace.ops import compute, load
from repro.trace.trace import MultiThreadedTrace, Trace
from tests.conftest import block_addr, tiny_config


def small_trace(num_threads=2, ops=20):
    traces = []
    for t in range(num_threads):
        thread_ops = []
        for i in range(ops):
            thread_ops.append(load(block_addr(1000 + t * 100 + i)))
            thread_ops.append(compute(3))
        traces.append(Trace(thread_ops, thread_id=t))
    return MultiThreadedTrace(traces, name="small", seed=7)


class TestBuildSystem:
    def test_builds_one_core_per_config_core(self):
        system = build_system(tiny_config(num_cores=2), small_trace(2))
        assert len(system.cores) == 2
        assert system.workload_name == "small"

    def test_rejects_too_few_threads(self):
        with pytest.raises(ConfigurationError):
            build_system(tiny_config(num_cores=2), small_trace(1))

    def test_extra_threads_ignored(self):
        system = build_system(tiny_config(num_cores=2), small_trace(4))
        assert len(system.cores) == 2

    def test_rejects_bad_warmup_fraction(self):
        with pytest.raises(ConfigurationError):
            build_system(tiny_config(num_cores=2), small_trace(2), warmup_fraction=1.0)

    def test_controller_selection(self):
        cases = {
            SpeculationMode.NONE: "Conventional",
            SpeculationMode.SELECTIVE: "InvisiFenceSelective",
            SpeculationMode.CONTINUOUS: "InvisiFenceContinuous",
            SpeculationMode.ASO: "ASOController",
        }
        for mode, name_fragment in cases.items():
            kwargs = {"num_checkpoints": 2} if mode in (SpeculationMode.CONTINUOUS,) else {}
            config = tiny_config(ConsistencyModel.SC,
                                 SpeculationConfig(mode=mode, **kwargs))
            system = build_system(config, small_trace(2))
            assert name_fragment in type(system.cores[0].controller).__name__


class TestSimulator:
    def test_run_completes_and_reports(self):
        result = simulate(tiny_config(num_cores=2), small_trace(2))
        assert result.runtime > 0
        assert result.events_processed > 0
        assert len(result.core_stats) == 2
        assert result.workload == "small"
        assert result.seed == 7

    def test_determinism(self):
        first = simulate(tiny_config(num_cores=2), small_trace(2))
        second = simulate(tiny_config(num_cores=2), small_trace(2))
        assert first.runtime == second.runtime
        assert first.breakdown() == second.breakdown()

    def test_event_cap_raises(self):
        with pytest.raises(SimulationError):
            simulate(tiny_config(num_cores=2), small_trace(2), max_events=3)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_time_sliced_run_until_matches_one_shot(self, engine):
        """run(until=T) must never advance past T, even with batching."""
        config = tiny_config(num_cores=2)
        one_shot = simulate(config, small_trace(2), engine=engine)

        system = build_system(config, small_trace(2), engine=engine)
        system.start()
        horizon = 0
        while not system.finished:
            horizon += 17
            system.events.run(until=horizon)
            assert system.events.now <= horizon
        sliced = RunResult(
            config=system.config, workload=system.workload_name,
            core_stats=[core.stats for core in system.cores],
            runtime=system.finish_time(),
            events_processed=system.events.processed, seed=7)
        assert sliced.to_json() == one_shot.to_json()

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_forever_waiting_controller_hits_the_backstop(self, engine):
        """A controller that waits at trace end forever must raise, not hang.

        Regression for the batched fast path: the inline trace-end wait
        must periodically return to the event loop so the ``max_events``
        runaway backstop stays effective.
        """
        system = build_system(tiny_config(num_cores=1), small_trace(1),
                              engine=engine)
        core = system.cores[0]
        core.controller.at_trace_end = lambda now: ("wait", now + 10)
        with pytest.raises(SimulationError, match="stalled"):
            Simulator(system).run(max_events=20_000)

    def test_warmup_reduces_measured_cycles(self):
        full = simulate(tiny_config(num_cores=2), small_trace(2))
        warmed = simulate(tiny_config(num_cores=2), small_trace(2),
                          warmup_fraction=0.5)
        assert warmed.cycles_per_core() < full.cycles_per_core()

    def test_accounting_identity_without_warmup(self):
        result = simulate(tiny_config(num_cores=2), small_trace(2))
        for stats in result.core_stats:
            assert stats.total_accounted() == stats.finish_time


class TestRunResult:
    def _result(self):
        return simulate(tiny_config(num_cores=2), small_trace(2))

    def test_aggregate_sums_cores(self):
        result = self._result()
        total = result.aggregate()
        assert total.busy == sum(s.busy for s in result.core_stats)
        assert total.loads == sum(s.loads for s in result.core_stats)

    def test_breakdown_normalised_sums_to_one(self):
        values = self._result().breakdown(normalize=True)
        assert abs(sum(values.values()) - 1.0) < 1e-9

    def test_speedup_over_self_is_one(self):
        result = self._result()
        assert result.speedup_over(result) == pytest.approx(1.0)

    def test_ordering_and_speculation_fractions_bounded(self):
        result = self._result()
        assert 0.0 <= result.ordering_stall_fraction() <= 1.0
        assert 0.0 <= result.speculation_fraction() <= 1.0

    def test_summary_keys(self):
        summary = self._result().summary()
        for key in ("runtime", "cycles_per_core", "busy", "other", "violation",
                    "ordering_stall_fraction", "commits", "aborts"):
            assert key in summary

    def test_aggregate_breakdown_over_runs(self):
        result = self._result()
        combined = aggregate_breakdown([result, result])
        assert abs(sum(combined.values()) - 1.0) < 1e-9
        normalised = aggregate_breakdown([result], normalize_to=result)
        assert abs(sum(normalised.values()) - 1.0) < 1e-9

    def test_empty_aggregate_breakdown(self):
        assert sum(aggregate_breakdown([]).values()) == 0.0

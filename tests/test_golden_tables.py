"""Golden-table regression tests for every experiment driver.

The golden files under ``tests/golden/`` were captured from the driver
``format()`` output *before* the experiments layer was ported onto the
declarative study framework; these tests assert the ported drivers still
reproduce that output byte-for-byte, at the miniature scales below.

To regenerate after an intentional output change::

    PYTHONPATH=src python tests/test_golden_tables.py --regen
"""

import sys
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentRunner,
    ExperimentSettings,
    run_cov_timeout_ablation,
    run_figure1,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_scaling,
    run_scenarios,
    run_store_buffer_ablation,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Figures 1/8/9/10/11/12 and both ablations share one runner at this scale
#: (two seeds so the mean-CI path is exercised, not just single-sample means).
FIG_SETTINGS = ExperimentSettings.quick(num_cores=4, ops_per_thread=800,
                                        seeds=(1, 2),
                                        workloads=("apache", "barnes"))
ABLATION_SIZES = (1, 4, 16)
ABLATION_TIMEOUTS = (0, 2000)

SCALING_SETTINGS = ExperimentSettings(num_cores=4, ops_per_thread=400,
                                      seeds=(1,),
                                      workloads=("false-sharing-storm",))
SCALING_CORE_COUNTS = (2, 4)

SCENARIO_SETTINGS = ExperimentSettings(
    num_cores=4, ops_per_thread=800, seeds=(1,),
    workloads=("handoff-pipeline", "false-sharing-storm"))


def build_all_tables():
    """Every driver's formatted output at the golden scales, as {name: text}."""
    runner = ExperimentRunner(FIG_SETTINGS)
    tables = {}
    for name, run in [("figure1", run_figure1), ("figure8", run_figure8),
                      ("figure9", run_figure9), ("figure10", run_figure10),
                      ("figure11", run_figure11), ("figure12", run_figure12)]:
        tables[name] = run(FIG_SETTINGS, runner).format()
    tables["ablation_sb"] = run_store_buffer_ablation(
        FIG_SETTINGS, workload="apache", sizes=ABLATION_SIZES,
        runner=runner).format()
    tables["ablation_cov"] = run_cov_timeout_ablation(
        FIG_SETTINGS, workload="apache", timeouts=ABLATION_TIMEOUTS,
        runner=runner).format()
    tables["scaling"] = run_scaling(
        SCALING_SETTINGS, core_counts=SCALING_CORE_COUNTS,
        scenarios=SCALING_SETTINGS.workloads).format()
    tables["scenarios"] = run_scenarios(
        SCENARIO_SETTINGS, ExperimentRunner(SCENARIO_SETTINGS)).format()
    return tables


DRIVERS = ("figure1", "figure8", "figure9", "figure10", "figure11", "figure12",
           "ablation_sb", "ablation_cov", "scaling", "scenarios")


@pytest.fixture(scope="module")
def tables():
    return build_all_tables()


@pytest.mark.parametrize("name", DRIVERS)
def test_driver_output_matches_golden(tables, name):
    golden = (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    assert tables[name] == golden, (
        f"{name} format() output changed; if intentional, regenerate with "
        f"'PYTHONPATH=src python tests/test_golden_tables.py --regen'")


def _regen():
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, text in build_all_tables().items():
        path = GOLDEN_DIR / f"{name}.txt"
        path.write_text(text, encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regen" not in sys.argv[1:]:
        sys.exit("usage: python tests/test_golden_tables.py --regen")
    _regen()
